"""Fault-injection scenario builders for exercising the execution engine.

These builders exist to *test the harness, not the paper*: each one
returns a tiny uniform-traffic scenario on a 4x4 mesh whose construction
first performs a configurable act of sabotage. Because they are referred
to by dotted name (``"repro.experiments.chaos:chaos_scenario"``) through
:class:`~repro.experiments.scenarios.ScenarioSpec`, the fault fires
inside whatever process builds the cell — the worker, under
``jobs>1`` — which is exactly where the fault-tolerant engine of
:mod:`repro.experiments.parallel` must contain it.

Fault modes:

``ok``
    no fault; a cheap clean simulation (the control group).
``raise``
    raise :class:`~repro.util.errors.SimulationError` — deterministic,
    classified non-retryable, must fail fast without retries.
``raise_transient``
    raise :class:`OSError` every time — retryable, must burn
    ``max_attempts`` attempts and then fail with ``attempts == 3``.
``flaky``
    raise :class:`OSError` only until ``marker`` exists (the first
    attempt creates it) — a transient failure that retry must heal.
``hang``
    sleep far past any reasonable wall timeout — must be killed by the
    parent's deadline enforcement and recorded as ``CellTimeout``.
``kill``
    ``SIGKILL`` the current process — breaks the worker pool every
    attempt; quarantine must convict it.
``kill_once``
    ``SIGKILL`` only if ``marker`` does not exist yet (created first,
    with ``open(marker, "x")``, so exactly one process dies even when
    attempts race) — a worker crash that pool rebuild + retry must heal.
``wait_marker``
    block (polling) until ``marker`` exists, then simulate cleanly — a
    cell that pauses at a known point so a test can act mid-sweep (kill
    the daemon, inspect state) and then release it deterministically.

``marker`` is a caller-owned path; distinct tests must use distinct
paths. ``cell_id`` only widens the cell key so one chaos sweep can hold
many otherwise-identical cells.
"""

from __future__ import annotations

import os
import signal
import time

from repro.experiments.scenarios import Scenario, ScenarioSpec
from repro.noc.config import NocConfig
from repro.noc.topology import make_topology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource
from repro.util.errors import ConfigError, SimulationError

__all__ = [
    "CHAOS_MODES",
    "GUARD_FAULTS",
    "chaos_scenario",
    "chaos_cell",
    "guard_chaos_scenario",
    "guard_chaos_cell",
]

CHAOS_MODES = (
    "ok",
    "raise",
    "raise_transient",
    "flaky",
    "hang",
    "kill",
    "kill_once",
    "wait_marker",
)

#: long enough that only deadline enforcement ends a "hang" cell
_HANG_SECONDS = 3600.0


def _inject_fault(mode: str, marker: str | None) -> None:
    if mode == "ok":
        return
    if mode == "raise":
        raise SimulationError("chaos: injected deterministic failure")
    if mode == "raise_transient":
        raise OSError("chaos: injected transient failure")
    if mode == "flaky":
        if marker is None:
            raise ConfigError("chaos mode 'flaky' needs a marker path")
        try:
            with open(marker, "x"):
                pass
        except FileExistsError:
            return  # already failed once; heal
        raise OSError("chaos: flaky failure (healed on retry)")
    if mode == "hang":
        time.sleep(_HANG_SECONDS)
        return
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "kill_once":
        if marker is None:
            raise ConfigError("chaos mode 'kill_once' needs a marker path")
        try:
            with open(marker, "x"):
                pass
        except FileExistsError:
            return  # someone already died for this cell; heal
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "wait_marker":
        if marker is None:
            raise ConfigError("chaos mode 'wait_marker' needs a marker path")
        while not os.path.exists(marker):
            time.sleep(0.02)


def chaos_scenario(
    mode: str = "ok",
    marker: str | None = None,
    cell_id: int = 0,
    rate: float = 0.05,
) -> Scenario:
    """A tiny uniform-traffic scenario that misbehaves on construction."""
    if mode not in CHAOS_MODES:
        raise ConfigError(f"unknown chaos mode {mode!r}; known: {CHAOS_MODES}")
    _inject_fault(mode, marker)
    config = NocConfig(width=4, height=4)
    topo = make_topology(config)

    def factory(seed: int) -> list:
        return [
            SyntheticTrafficSource(
                nodes=range(config.num_nodes),
                rate=rate,
                pattern=UniformPattern(topo),
                app_id=0,
                seed=seed,
                lengths=FixedLength(1),
            )
        ]

    return Scenario(
        name=f"chaos_{mode}_{cell_id}",
        config=config,
        region_map=None,
        traffic_factory=factory,
        description=f"fault-injection scenario (mode={mode})",
        meta={"mode": mode, "cell_id": cell_id},
        spec=ScenarioSpec(
            "repro.experiments.chaos:chaos_scenario",
            {"mode": mode, "marker": marker, "cell_id": cell_id, "rate": rate},
        ),
    )


#: runtime-state faults for exercising the invariant guard
#: (:mod:`repro.noc.guard`); each corrupts *live simulator state* from a
#: traffic source's ``tick``, so the guard — not the construction-time
#: machinery above — must catch it. Expected classification:
#:
#: ``credit_leak``      -> credit_conservation (one credit vanishes)
#: ``drop_tail``        -> flit_conservation (a buffered flit vanishes)
#: ``freeze_router``    -> starvation (one router's SA stage wedged while
#:                         the rest of the chip keeps ejecting; needs the
#:                         guard's ``age_watermark``)
#: ``dateline``         -> dateline (cached escape class corrupted; wrap
#:                         fabrics only)
#: ``livelock``         -> livelock (wedged packets + forged flit motion:
#:                         the ejection watchdog must see through it)
#: ``deadlock``         -> deadlock (hand-built cyclic buffer wedge
#:                         between two adjacent routers; the wait-graph
#:                         search must find the cycle)
GUARD_FAULTS = (
    "credit_leak",
    "drop_tail",
    "freeze_router",
    "dateline",
    "livelock",
    "deadlock",
)


class _GuardFaultSource:
    """Traffic source that sabotages live network state at ``at_cycle``.

    Ticks run inside :meth:`Simulator.step` before injections and router
    phases, so the corruption lands mid-simulation exactly like a real
    bug would. Deliberately has no ``next_injection_cycle``: its presence
    disables idle fast-forward, so every cycle actually ticks.
    """

    def __init__(self, fault: str, at_cycle: int, freeze_node: int = 5):
        self.fault = fault
        self.at_cycle = at_cycle
        self.freeze_node = freeze_node
        self.done = False

    def tick(self, cycle: int, net) -> None:
        if cycle < self.at_cycle:
            return
        fault = self.fault
        if fault == "credit_leak":
            if not self.done:
                self._leak_credit(net)
        elif fault == "drop_tail":
            if not self.done:
                self._drop_flit(net)
        elif fault == "freeze_router":
            # Re-freeze every cycle: arrivals and grants keep re-arming
            # the wake bits, a one-shot clear would heal within a cycle.
            net.routers[self.freeze_node].sa_pending = 0
        elif fault == "dateline":
            self._corrupt_dateline(net)
        elif fault == "livelock":
            if not self.done:
                self._wedge(net, cycle)
            # Forge flit motion so the movement watchdog stays satisfied;
            # only the ejection watchdog can see this stall.
            net.flits_moved += 1
        elif fault == "deadlock":
            if not self.done:
                self._wedge(net, cycle)

    def _leak_credit(self, net) -> None:
        router = net.routers[0]
        for port in range(1, router.num_ports):
            if net.topology.neighbor[0][port] >= 0:
                router.out_credits[port][0] -= 1
                self.done = True
                return

    def _drop_flit(self, net) -> None:
        for router in net.routers:
            if not router.busy_vcs:
                continue
            for invc in router.vcs:
                if invc.arrivals:
                    invc.arrivals.pop()  # counters left stale on purpose
                    self.done = True
                    return
        # no buffered flit yet: retry next tick

    def _corrupt_dateline(self, net) -> None:
        ncls = net.topology.num_escape_classes
        for router in net.routers:
            if not router.busy_vcs:
                continue
            for invc in router.vcs:
                if invc.pkt is not None and invc.route_ports is not None:
                    entry = net._route_entry
                    if entry is not None:
                        expected = entry(router.node, invc.pkt.dst)[2]
                    else:
                        expected = net.routing.escape_vc_class(router.node, invc.pkt)
                    invc.escape_class = (expected + 1) % ncls

    def _wedge(self, net, cycle: int) -> None:
        """Cross-wedge two adjacent routers into a cyclic buffer wait.

        Every VC of node ``b``'s input port facing ``a`` is filled with a
        full-length packet destined back to ``a`` (and vice versa), with
        the upstream credit counters drained to match — so every
        conservation equation holds, but each side's packets need a
        downstream VC the other side's packets occupy: a true cyclic
        wait, indistinguishable from an organically-routed deadlock.
        """
        topo = net.topology
        a = 0
        port_a = next(
            p for p in range(1, topo.num_ports) if topo.neighbor[a][p] >= 0
        )
        b = topo.neighbor[a][port_a]
        port_b = topo.opposite[port_a]
        cfg = net.config
        depth = cfg.vc_depth
        length = min(depth, cfg.max_packet_flits)
        for node, port, upstream, up_port, dst in (
            (b, port_b, a, port_a, a),
            (a, port_a, b, port_b, b),
        ):
            for vc in range(cfg.total_vcs):
                pkt = net.alloc_packet(
                    src=dst, dst=dst, length=length, inject_cycle=cycle,
                    vnet=cfg.vc_vnet(vc),
                )
                net._deliver_flit(node, port, vc, pkt, cycle)
                for _ in range(length - 1):
                    net._deliver_flit(node, port, vc, None, cycle)
                net.routers[upstream].out_credits[up_port][vc] -= length
                net.packets_in_flight += 1
        self.done = True


def guard_chaos_scenario(
    fault: str = "deadlock",
    cell_id: int = 0,
    rate: float = 0.05,
    at_cycle: int = 50,
) -> Scenario:
    """A scenario whose traffic source corrupts live simulator state.

    ``deadlock`` / ``livelock`` run with no background traffic (the wedge
    is the whole workload); the conservation faults ride a light uniform
    load so there is state to corrupt. ``dateline`` runs on a 4x4 torus
    (two escape classes); everything else on the 4x4 mesh.
    """
    if fault not in GUARD_FAULTS:
        raise ConfigError(f"unknown guard fault {fault!r}; known: {GUARD_FAULTS}")
    if fault in ("deadlock", "livelock"):
        rate = 0.0
    if fault == "dateline":
        config = NocConfig.for_topology("torus", width=4, height=4)
    else:
        config = NocConfig(width=4, height=4)
    topo = make_topology(config)

    def factory(seed: int) -> list:
        sources: list = [_GuardFaultSource(fault, at_cycle)]
        if rate > 0.0:
            sources.append(
                SyntheticTrafficSource(
                    nodes=range(config.num_nodes),
                    rate=rate,
                    pattern=UniformPattern(topo),
                    app_id=0,
                    seed=seed,
                    lengths=FixedLength(2),
                )
            )
        return sources

    return Scenario(
        name=f"guard_chaos_{fault}_{cell_id}",
        config=config,
        region_map=None,
        traffic_factory=factory,
        description=f"guard fault-injection scenario (fault={fault})",
        meta={"fault": fault, "cell_id": cell_id},
        spec=ScenarioSpec(
            "repro.experiments.chaos:guard_chaos_scenario",
            {"fault": fault, "cell_id": cell_id, "rate": rate, "at_cycle": at_cycle},
        ),
    )


def guard_chaos_cell(
    scheme,
    effort,
    seed: int,
    fault: str = "deadlock",
    cell_id: int = 0,
    rate: float = 0.05,
    at_cycle: int = 50,
):
    """Build a guard-fault :class:`~repro.experiments.parallel.Cell`.

    Assembled from the raw spec (like :func:`chaos_cell`) so the fault
    source is constructed — and detonates — in whatever process runs the
    cell.
    """
    from repro.experiments.parallel import Cell

    if fault not in GUARD_FAULTS:
        raise ConfigError(f"unknown guard fault {fault!r}; known: {GUARD_FAULTS}")
    if fault in ("deadlock", "livelock"):
        rate = 0.0
    return Cell(
        scheme=scheme,
        spec=ScenarioSpec(
            "repro.experiments.chaos:guard_chaos_scenario",
            {"fault": fault, "cell_id": cell_id, "rate": rate, "at_cycle": at_cycle},
        ),
        effort=effort,
        seed=seed,
    )


def chaos_cell(
    scheme,
    effort,
    seed: int,
    mode: str = "ok",
    marker: str | None = None,
    cell_id: int = 0,
    rate: float = 0.05,
):
    """Build a chaos :class:`~repro.experiments.parallel.Cell` directly.

    ``Cell.for_scenario`` would *build* the scenario in the calling
    process — detonating the fault there instead of in the worker under
    test — so chaos cells are assembled from the raw spec.
    """
    from repro.experiments.parallel import Cell

    if mode not in CHAOS_MODES:
        raise ConfigError(f"unknown chaos mode {mode!r}; known: {CHAOS_MODES}")
    return Cell(
        scheme=scheme,
        spec=ScenarioSpec(
            "repro.experiments.chaos:chaos_scenario",
            {"mode": mode, "marker": marker, "cell_id": cell_id, "rate": rate},
        ),
        effort=effort,
        seed=seed,
    )
