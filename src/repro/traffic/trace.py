"""Packet-trace capture and replay.

Traces decouple workload generation from simulation: any traffic source
can be *captured* into a :class:`Trace` (a compact structured NumPy
array), saved to ``.npz``, and later *replayed* bit-identically through a
:class:`TraceTrafficSource` — the same role the paper's GEMS-generated
trace files play for GARNET. Replay is also how the test suite pins down
cross-policy comparisons: two schemes fed the same trace see exactly the
same offered traffic.

Closed-loop behaviour (the PARSEC reply generation) is intentionally not
captured — a trace records *offered* packets; replies depend on simulated
ejection times and must stay reactive.
"""

from __future__ import annotations

import numpy as np

from repro.noc.flit import Packet
from repro.util.errors import TrafficError

__all__ = ["Trace", "TraceTrafficSource", "capture_trace"]

_FIELDS = [
    ("cycle", np.int64),
    ("src", np.int64),
    ("dst", np.int64),
    ("length", np.int64),
    ("app", np.int64),
    ("vnet", np.int64),
    ("is_global", np.bool_),
    ("is_adversarial", np.bool_),
]


class Trace:
    """An ordered list of packet injections."""

    def __init__(self, records: np.ndarray):
        expected = {name for name, _ in _FIELDS}
        if set(records.dtype.names or ()) != expected:
            raise TrafficError(f"trace records must have fields {sorted(expected)}")
        order = np.argsort(records["cycle"], kind="stable")
        self.records = records[order]

    def __len__(self) -> int:
        return len(self.records)

    @classmethod
    def from_rows(cls, rows) -> "Trace":
        """Build from an iterable of (cycle, src, dst, length, app, vnet,
        is_global, is_adversarial) tuples."""
        arr = np.array(list(rows), dtype=_FIELDS)
        return cls(arr)

    def save(self, path) -> None:
        """Write the trace to an ``.npz`` file."""
        np.savez_compressed(path, records=self.records)

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with np.load(path) as data:
            return cls(data["records"])

    def total_flits(self) -> int:
        """Sum of packet lengths."""
        return int(self.records["length"].sum())

    def duration(self) -> int:
        """Last injection cycle + 1 (0 for an empty trace)."""
        return int(self.records["cycle"][-1]) + 1 if len(self.records) else 0


class TraceTrafficSource:
    """Replays a :class:`Trace` against a network."""

    def __init__(self, trace: Trace, cycle_offset: int = 0, repeat: bool = False):
        self.trace = trace
        self.cycle_offset = cycle_offset
        self.repeat = repeat
        self._idx = 0
        self._epoch = 0
        self.packets_injected = 0

    def next_injection_cycle(self, cycle: int, limit: int, network) -> int | None:
        """Due cycle of the next record if it falls before ``limit``.

        Pure query — replay keeps no RNG, so the fast-forward lookahead
        needs no scanning or buffering here.
        """
        records = self.trace.records
        n = len(records)
        if n == 0:
            return None
        idx, epoch = self._idx, self._epoch
        if idx >= n:
            period = self.trace.duration()
            if not self.repeat or period == 0:
                return None
            idx, epoch = 0, epoch + 1
        due = int(records[idx]["cycle"]) + self.cycle_offset + epoch * self.trace.duration()
        return due if due < limit else None

    def tick(self, cycle: int, network) -> None:
        """Inject every trace record due at ``cycle``."""
        records = self.trace.records
        n = len(records)
        if n == 0:
            return
        period = self.trace.duration()
        while True:
            if self._idx >= n:
                if not self.repeat or period == 0:
                    return
                self._idx = 0
                self._epoch += 1
            rec = records[self._idx]
            due = int(rec["cycle"]) + self.cycle_offset + self._epoch * period
            if due > cycle:
                return
            pkt = Packet(
                src=int(rec["src"]),
                dst=int(rec["dst"]),
                length=int(rec["length"]),
                inject_cycle=cycle,
                app_id=int(rec["app"]),
                vnet=int(rec["vnet"]),
                is_global=bool(rec["is_global"]),
                is_adversarial=bool(rec["is_adversarial"]),
            )
            network.inject(pkt)
            self.packets_injected += 1
            self._idx += 1


class _CaptureNetwork:
    """Minimal network stand-in that records inject() calls."""

    def __init__(self) -> None:
        self.rows: list[tuple] = []

    def inject(self, pkt: Packet) -> None:
        self.rows.append(
            (
                pkt.inject_cycle,
                pkt.src,
                pkt.dst,
                pkt.length,
                pkt.app_id,
                pkt.vnet,
                pkt.is_global,
                pkt.is_adversarial,
            )
        )


def capture_trace(sources, cycles: int) -> Trace:
    """Run open-loop ``sources`` for ``cycles`` and capture their packets.

    Only open-loop sources are meaningful here (closed-loop sources react
    to ejections, which a capture run does not produce).
    """
    sink = _CaptureNetwork()
    for cycle in range(cycles):
        for source in sources:
            source.tick(cycle, sink)
    return Trace.from_rows(sink.rows)
