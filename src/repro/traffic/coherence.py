"""Directory-coherence traffic and the dynamic-home-node optimization.

The paper's Section II.A Example 3: Marty & Hill's *virtual hierarchies*
select cache-line home nodes so coherence transactions resolve inside the
requester's region, cutting cycles-per-transaction by 15-65% — and, as a
side effect, turning the NoC into an RNoC (most protocol traffic becomes
intra-region). This module reproduces that formation mechanism as a
workload the simulator can run:

* a simple directory protocol over three virtual networks —
  **request** (1 flit, requester -> home), optional **forward** (1 flit,
  home -> current owner, probability ``forward_prob``), and **data
  response** (5 flits, home or owner -> requester);
* two home-node policies:
  ``static``  — homes are address-interleaved across the whole chip
  (the conventional-NoC baseline), and
  ``dynamic`` — homes are interleaved *within the region that owns the
  data* (the virtual-hierarchy optimization);
* a sharing model: a request targets the requester's own application's
  data with probability ``1 - remote_share``, someone else's otherwise.

:meth:`CoherenceWorkload.regionalization_report` measures the resulting
intra-/inter-region traffic split, which is the RB-3 regional behaviour
the paper derives from this example; ``examples/coherence_rnoc.py`` runs
the comparison end to end.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.regions import RegionMap
from repro.noc.flit import LONG_PACKET_FLITS, Packet
from repro.util.errors import TrafficError
from repro.util.rng import make_rng
from repro.util.validate import check_fraction

__all__ = ["CoherenceConfig", "CoherenceWorkload"]

#: virtual networks used by the protocol (deadlock freedom: a message may
#: only generate messages on strictly higher vnets)
VNET_REQUEST = 0
VNET_FORWARD = 1
VNET_RESPONSE = 2

DIRECTORY_LATENCY = 4
OWNER_LATENCY = 2


@dataclass(frozen=True)
class CoherenceConfig:
    """Knobs of the coherence workload.

    ``req_rate`` is requests/node/cycle; ``remote_share`` the probability
    a request targets another application's data; ``forward_prob`` the
    probability the home must forward to a dirty owner (three-hop
    transaction) rather than answer directly (two-hop).
    """

    req_rate: float = 0.02
    remote_share: float = 0.10
    forward_prob: float = 0.30
    home_policy: str = "dynamic"

    def __post_init__(self) -> None:
        check_fraction(self.remote_share, "remote_share")
        check_fraction(self.forward_prob, "forward_prob")
        if not 0 <= self.req_rate <= 1:
            raise TrafficError(f"req_rate must be in [0,1], got {self.req_rate}")
        if self.home_policy not in ("static", "dynamic"):
            raise TrafficError(
                f"home_policy must be 'static' or 'dynamic', got {self.home_policy!r}"
            )


class CoherenceWorkload:
    """Closed-loop directory-protocol traffic over a region map.

    Requires a network configured with (at least) three virtual networks.
    """

    def __init__(self, region_map: RegionMap, config: CoherenceConfig, seed):
        self.region_map = region_map
        self.config = config
        self.rng = make_rng(seed)
        topo = region_map.topology
        self._nodes = np.asarray(
            [n for n in range(topo.num_nodes) if region_map.node_app[n] >= 0],
            dtype=np.int64,
        )
        if len(self._nodes) == 0:
            raise TrafficError("region map assigns no nodes")
        self._all_nodes = np.arange(topo.num_nodes, dtype=np.int64)
        self._region_nodes = {
            app: np.asarray(region_map.nodes_of(app), dtype=np.int64)
            for app in region_map.apps
        }
        self._apps = list(region_map.apps)
        # pid -> pending continuation executed when the packet ejects.
        self._continuations: dict[int, tuple] = {}
        self._pending: list = []
        self._seq = 0
        self._attached = False
        self.transactions_started = 0
        self.transactions_completed = 0
        self.transaction_latency_sum = 0
        self.intra_packets = 0
        self.inter_packets = 0

    # -- home selection -------------------------------------------------------
    def home_of(self, data_app: int) -> int:
        """Pick the home (directory) node for a line of ``data_app``'s data."""
        if self.config.home_policy == "dynamic":
            nodes = self._region_nodes[data_app]
        else:
            nodes = self._all_nodes
        return int(nodes[self.rng.integers(len(nodes))])

    def owner_of(self, data_app: int) -> int:
        """Pick the current owner/sharer of a line of ``data_app``'s data."""
        nodes = self._region_nodes[data_app]
        return int(nodes[self.rng.integers(len(nodes))])

    # -- simulator interface -----------------------------------------------------
    def tick(self, cycle: int, network) -> None:
        """Issue new requests and dispatch due protocol continuations."""
        if not self._attached:
            if network.config.num_vnets < 3:
                raise TrafficError(
                    "coherence workload needs >= 3 virtual networks "
                    f"(got {network.config.num_vnets})"
                )
            network.eject_callbacks.append(self._on_ejection)
            self._attached = True
        rng = self.rng
        fire = np.flatnonzero(rng.random(len(self._nodes)) < self.config.req_rate)
        for idx in fire:
            self._start_transaction(network, int(self._nodes[idx]), cycle)
        while self._pending and self._pending[0][0] <= cycle:
            _, _, pkt, continuation = heapq.heappop(self._pending)
            pkt.inject_cycle = cycle
            if continuation is not None:
                self._continuations[pkt.pid] = continuation
            self._send(network, pkt)

    def _start_transaction(self, network, node: int, cycle: int) -> None:
        rng = self.rng
        app = self.region_map.app_of(node)
        if rng.random() < self.config.remote_share and len(self._apps) > 1:
            others = [a for a in self._apps if a != app]
            data_app = others[int(rng.integers(len(others)))]
        else:
            data_app = app
        home = self.home_of(data_app)
        if home == node:
            # Local directory hit: no network transaction.
            return
        self.transactions_started += 1
        request = Packet(
            src=node,
            dst=home,
            length=1,
            inject_cycle=cycle,
            app_id=app,
            vnet=VNET_REQUEST,
            is_global=self.region_map.is_global_pair(node, home),
        )
        self._continuations[request.pid] = ("at_home", node, data_app, cycle)
        self._send(network, request)

    def _send(self, network, pkt: Packet) -> None:
        if pkt.is_global:
            self.inter_packets += 1
        else:
            self.intra_packets += 1
        network.inject(pkt)

    def _schedule(self, due: int, pkt: Packet, continuation) -> None:
        self._seq += 1
        heapq.heappush(self._pending, (due, self._seq, pkt, continuation))

    def _on_ejection(self, pkt: Packet, cycle: int) -> None:
        continuation = self._continuations.pop(pkt.pid, None)
        if continuation is None:
            return
        kind = continuation[0]
        rng = self.rng
        if kind == "at_home":
            _, requester, data_app, start = continuation
            if rng.random() < self.config.forward_prob:
                owner = self.owner_of(data_app)
                if owner != pkt.dst and owner != requester:
                    fwd = Packet(
                        src=pkt.dst,
                        dst=owner,
                        length=1,
                        inject_cycle=cycle,
                        app_id=pkt.app_id,
                        vnet=VNET_FORWARD,
                        is_global=self.region_map.is_global_pair(pkt.dst, owner),
                    )
                    self._schedule(
                        cycle + DIRECTORY_LATENCY, fwd, ("at_owner", requester, start)
                    )
                    return
            self._reply(pkt.dst, requester, pkt.app_id, cycle + DIRECTORY_LATENCY, start)
        elif kind == "at_owner":
            _, requester, start = continuation
            self._reply(pkt.dst, requester, pkt.app_id, cycle + OWNER_LATENCY, start)
        elif kind == "done":
            start = continuation[1]
            self.transactions_completed += 1
            self.transaction_latency_sum += cycle - start

    def _reply(self, src: int, requester: int, app: int, due: int, start: int) -> None:
        if src == requester:
            self.transactions_completed += 1
            self.transaction_latency_sum += due - start
            return
        data = Packet(
            src=src,
            dst=requester,
            length=LONG_PACKET_FLITS,
            inject_cycle=due,
            app_id=app,
            vnet=VNET_RESPONSE,
            is_global=self.region_map.is_global_pair(src, requester),
        )
        self._schedule(due, data, ("done", start))

    # -- reporting -------------------------------------------------------------------
    def regionalization_report(self) -> dict[str, float]:
        """Intra/inter split and transaction stats — the RB-3 measurement."""
        total = self.intra_packets + self.inter_packets
        return {
            "packets": total,
            "intra_fraction": self.intra_packets / total if total else float("nan"),
            "inter_fraction": self.inter_packets / total if total else float("nan"),
            "transactions_completed": self.transactions_completed,
            "avg_transaction_cycles": (
                self.transaction_latency_sum / self.transactions_completed
                if self.transactions_completed
                else float("nan")
            ),
        }
