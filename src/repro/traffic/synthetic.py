"""Open-loop synthetic traffic sources.

Each node covered by a source injects packets as a Bernoulli process whose
per-cycle probability is derived from the configured load in
**flits/node/cycle** divided by the mean packet length — the standard
open-loop injection model. Packet lengths follow the paper's bimodal mix
(half 1-flit short packets, half 5-flit data packets) unless overridden.

Sources also keep per-window injection counters so experiment code can
verify drain completeness and offered-vs-accepted load.

Fast-forward lookahead
----------------------

:meth:`SyntheticTrafficSource.next_injection_cycle` lets the simulator
skip provably idle gaps: it scans forward cycle by cycle consuming the
RNG in *exactly* the order the naive per-cycle :meth:`tick` would (one
length-``len(nodes)`` Bernoulli vector per active cycle, then one
``make_packet`` per firing node in ascending node order), buffering any
packets it builds. A later ``tick`` on an already-scanned cycle injects
the buffered packets without touching the RNG, so a fast-forwarded run is
bit-identical to a naive one. The simulator never jumps past a buffered
injection (the lookahead's return value caps the jump), so buffered
packets cannot be skipped over.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.noc.flit import LONG_PACKET_FLITS, SHORT_PACKET_FLITS, Packet
from repro.util.errors import TrafficError
from repro.util.rng import make_rng

__all__ = ["BimodalLengths", "FixedLength", "SyntheticTrafficSource"]


class BimodalLengths:
    """The paper's packet-length mix: 1 or 5 flits with equal probability."""

    def __init__(self, short: int = SHORT_PACKET_FLITS, long: int = LONG_PACKET_FLITS, p_short: float = 0.5):
        if short < 1 or long < 1:
            raise TrafficError("packet lengths must be >= 1 flit")
        if not 0.0 <= p_short <= 1.0:
            raise TrafficError(f"p_short must be in [0,1], got {p_short}")
        self.short = short
        self.long = long
        self.p_short = p_short

    @property
    def mean(self) -> float:
        """Expected flits per packet."""
        return self.p_short * self.short + (1 - self.p_short) * self.long

    def __call__(self, rng: np.random.Generator) -> int:
        return self.short if rng.random() < self.p_short else self.long


class FixedLength:
    """Every packet has the same length (useful in unit tests)."""

    def __init__(self, length: int):
        if length < 1:
            raise TrafficError("packet length must be >= 1 flit")
        self.length = length

    @property
    def mean(self) -> float:
        return float(self.length)

    def __call__(self, rng: np.random.Generator) -> int:
        return self.length


class SyntheticTrafficSource:
    """Bernoulli open-loop source over a set of nodes.

    Parameters
    ----------
    nodes:
        Source nodes this generator covers.
    rate:
        Offered load in flits/node/cycle (converted internally to a
        per-cycle packet probability using the length sampler's mean).
    pattern:
        Destination sampler ``pattern(rng, src) -> dst``.
    app_id:
        Application the packets belong to.
    seed:
        RNG seed (or a Generator).
    lengths:
        Length sampler; defaults to the paper's bimodal mix.
    vnet:
        Virtual network for the packets.
    region_map:
        When given, packets whose src/dst regions differ are flagged
        ``is_global`` for the statistics breakdowns.
    start, stop:
        Active cycle range (half-open); ``stop=None`` means forever.
    adversarial:
        Mark packets as adversarial (Fig. 17 flood).
    """

    def __init__(
        self,
        nodes: Sequence[int],
        rate: float,
        pattern,
        app_id: int,
        seed,
        lengths=None,
        vnet: int = 0,
        region_map=None,
        start: int = 0,
        stop: int | None = None,
        adversarial: bool = False,
    ):
        self.nodes = np.asarray(sorted(nodes), dtype=np.int64)
        if len(self.nodes) == 0:
            raise TrafficError("traffic source over an empty node set")
        if rate < 0:
            raise TrafficError(f"rate must be >= 0, got {rate}")
        self.rate = rate
        self.pattern = pattern
        self.app_id = app_id
        self.rng = make_rng(seed)
        self.lengths = lengths or BimodalLengths()
        self.p_packet = rate / self.lengths.mean
        if self.p_packet > 1.0:
            raise TrafficError(
                f"rate {rate} flits/node/cycle exceeds 1 packet/node/cycle "
                f"(mean length {self.lengths.mean})"
            )
        self.vnet = vnet
        self.region_map = region_map
        self.start = start
        self.stop = stop
        self.adversarial = adversarial
        self.packets_injected = 0
        self.flits_injected = 0
        # Plain-int node list: the hot loop indexes it per firing node, and
        # a list of ints avoids a numpy-scalar box + int() per packet.
        self._node_list = [int(x) for x in self.nodes]
        # Fast-forward lookahead state: cycles < _scanned_until have already
        # consumed their RNG draws; packets they produced wait in _pending
        # as (cycle, [packets]) entries until tick() reaches that cycle.
        self._pending: deque[tuple[int, list[Packet]]] = deque()
        self._scanned_until = 0
        # Current network's pool allocator (rebound per tick/scan; None
        # falls back to direct construction, e.g. under capture_trace).
        self._alloc = None

    # Lookahead scan block: 512 cycles of Bernoulli vectors per RNG call.
    _SCAN_BLOCK = 512

    def tick(self, cycle: int, network) -> None:
        """Generate this cycle's packets into the network's source queues."""
        if cycle < self.start or (self.stop is not None and cycle >= self.stop):
            return
        if self.p_packet <= 0.0:
            return
        if cycle >= self._scanned_until:
            # Scan a block ahead so per-cycle ticking amortizes its RNG
            # draws the same way fast-forward lookahead does. The scan
            # consumes the stream in exactly naive per-cycle order, so
            # this changes who draws, never what is drawn.
            self.next_injection_cycle(cycle, cycle + self._SCAN_BLOCK, network)
        pending = self._pending
        if pending and pending[0][0] == cycle:
            for pkt in pending.popleft()[1]:
                network.inject(pkt)
                self.packets_injected += 1
                self.flits_injected += pkt.length

    def next_injection_cycle(self, cycle: int, limit: int, network) -> int | None:
        """Earliest cycle in ``[cycle, limit)`` this source will inject at.

        Returns ``None`` when the source provably injects nothing before
        ``limit``. Scanning consumes the RNG exactly as naive ticking
        would; constructed packets are buffered for the eventual ``tick``
        (see module docstring). Inactive cycles — before ``start``, at or
        past ``stop``, or with zero probability — draw nothing in either
        mode, so the scan watermark moves over them for free.
        """
        pending = self._pending
        if pending:
            return pending[0][0]
        if self.p_packet <= 0.0:
            return None
        if self.stop is not None and limit > self.stop:
            limit = self.stop
        c = max(self._scanned_until, cycle, self.start)
        if c >= limit:
            return None
        self._alloc = getattr(network, "alloc_packet", None)
        rng = self.rng
        p = self.p_packet
        n = len(self.nodes)
        nodes = self._node_list
        # Scan in blocks: one (span, n) draw replaces span per-cycle draws.
        # Generator.random fills arrays from the bit stream in C order, so
        # the block consumes exactly the doubles the naive per-cycle vectors
        # would. When a row fires, make_packet draws must follow *that*
        # row's vector in the stream — so rewind to the block start and
        # re-consume only the rows up to the firing one. The span ramps up
        # geometrically: busy sources fire within a few rows (a big block
        # would be drawn and mostly thrown away on rewind), idle ones reach
        # the full block after two steps.
        span_cap = 16
        while c < limit:
            span = min(limit - c, span_cap)
            span_cap = min(span_cap * 4, self._SCAN_BLOCK)
            state = rng.bit_generator.state
            block = rng.random((span, n))
            hits = np.flatnonzero((block < p).any(axis=1))
            if not len(hits):
                c += span
                self._scanned_until = c
                continue
            j = int(hits[0])
            rng.bit_generator.state = state
            rng.random((j + 1, n))  # stream now sits just after row j's vector
            c += j
            pkts = []
            for idx in np.flatnonzero(block[j] < p).tolist():
                pkt = self.make_packet(nodes[idx], c)
                if pkt is not None:
                    pkts.append(pkt)
            self._scanned_until = c + 1
            if pkts:
                pending.append((c, pkts))
                return c
            c += 1  # every firing node drew dst == src; keep scanning
        self._scanned_until = limit
        return None

    def _new_packet(self, src: int, dst: int, length: int, cycle: int, is_global: bool) -> Packet:
        """Construct via the network's packet pool when one is bound."""
        alloc = self._alloc
        if alloc is not None:
            return alloc(
                src=src,
                dst=dst,
                length=length,
                inject_cycle=cycle,
                app_id=self.app_id,
                vnet=self.vnet,
                is_global=is_global,
                is_adversarial=self.adversarial,
            )
        return Packet(
            src=src,
            dst=dst,
            length=length,
            inject_cycle=cycle,
            app_id=self.app_id,
            vnet=self.vnet,
            is_global=is_global,
            is_adversarial=self.adversarial,
        )

    def make_packet(self, src: int, cycle: int) -> Packet | None:
        """Build one packet from ``src`` at ``cycle`` (hook for subclasses)."""
        dst = self.pattern(self.rng, src)
        if dst == src:
            return None
        is_global = bool(self.region_map and self.region_map.is_global_pair(src, dst))
        return self._new_packet(src, dst, self.lengths(self.rng), cycle, is_global)
