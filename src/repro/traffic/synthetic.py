"""Open-loop synthetic traffic sources.

Each node covered by a source injects packets as a Bernoulli process whose
per-cycle probability is derived from the configured load in
**flits/node/cycle** divided by the mean packet length — the standard
open-loop injection model. Packet lengths follow the paper's bimodal mix
(half 1-flit short packets, half 5-flit data packets) unless overridden.

Sources also keep per-window injection counters so experiment code can
verify drain completeness and offered-vs-accepted load.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.noc.flit import LONG_PACKET_FLITS, SHORT_PACKET_FLITS, Packet
from repro.util.errors import TrafficError
from repro.util.rng import make_rng

__all__ = ["BimodalLengths", "FixedLength", "SyntheticTrafficSource"]


class BimodalLengths:
    """The paper's packet-length mix: 1 or 5 flits with equal probability."""

    def __init__(self, short: int = SHORT_PACKET_FLITS, long: int = LONG_PACKET_FLITS, p_short: float = 0.5):
        if short < 1 or long < 1:
            raise TrafficError("packet lengths must be >= 1 flit")
        if not 0.0 <= p_short <= 1.0:
            raise TrafficError(f"p_short must be in [0,1], got {p_short}")
        self.short = short
        self.long = long
        self.p_short = p_short

    @property
    def mean(self) -> float:
        """Expected flits per packet."""
        return self.p_short * self.short + (1 - self.p_short) * self.long

    def __call__(self, rng: np.random.Generator) -> int:
        return self.short if rng.random() < self.p_short else self.long


class FixedLength:
    """Every packet has the same length (useful in unit tests)."""

    def __init__(self, length: int):
        if length < 1:
            raise TrafficError("packet length must be >= 1 flit")
        self.length = length

    @property
    def mean(self) -> float:
        return float(self.length)

    def __call__(self, rng: np.random.Generator) -> int:
        return self.length


class SyntheticTrafficSource:
    """Bernoulli open-loop source over a set of nodes.

    Parameters
    ----------
    nodes:
        Source nodes this generator covers.
    rate:
        Offered load in flits/node/cycle (converted internally to a
        per-cycle packet probability using the length sampler's mean).
    pattern:
        Destination sampler ``pattern(rng, src) -> dst``.
    app_id:
        Application the packets belong to.
    seed:
        RNG seed (or a Generator).
    lengths:
        Length sampler; defaults to the paper's bimodal mix.
    vnet:
        Virtual network for the packets.
    region_map:
        When given, packets whose src/dst regions differ are flagged
        ``is_global`` for the statistics breakdowns.
    start, stop:
        Active cycle range (half-open); ``stop=None`` means forever.
    adversarial:
        Mark packets as adversarial (Fig. 17 flood).
    """

    def __init__(
        self,
        nodes: Sequence[int],
        rate: float,
        pattern,
        app_id: int,
        seed,
        lengths=None,
        vnet: int = 0,
        region_map=None,
        start: int = 0,
        stop: int | None = None,
        adversarial: bool = False,
    ):
        self.nodes = np.asarray(sorted(nodes), dtype=np.int64)
        if len(self.nodes) == 0:
            raise TrafficError("traffic source over an empty node set")
        if rate < 0:
            raise TrafficError(f"rate must be >= 0, got {rate}")
        self.rate = rate
        self.pattern = pattern
        self.app_id = app_id
        self.rng = make_rng(seed)
        self.lengths = lengths or BimodalLengths()
        self.p_packet = rate / self.lengths.mean
        if self.p_packet > 1.0:
            raise TrafficError(
                f"rate {rate} flits/node/cycle exceeds 1 packet/node/cycle "
                f"(mean length {self.lengths.mean})"
            )
        self.vnet = vnet
        self.region_map = region_map
        self.start = start
        self.stop = stop
        self.adversarial = adversarial
        self.packets_injected = 0
        self.flits_injected = 0

    def tick(self, cycle: int, network) -> None:
        """Generate this cycle's packets into the network's source queues."""
        if cycle < self.start or (self.stop is not None and cycle >= self.stop):
            return
        if self.p_packet <= 0.0:
            return
        fire = np.flatnonzero(self.rng.random(len(self.nodes)) < self.p_packet)
        for idx in fire:
            src = int(self.nodes[idx])
            pkt = self.make_packet(src, cycle)
            if pkt is not None:
                network.inject(pkt)
                self.packets_injected += 1
                self.flits_injected += pkt.length

    def make_packet(self, src: int, cycle: int) -> Packet | None:
        """Build one packet from ``src`` at ``cycle`` (hook for subclasses)."""
        dst = self.pattern(self.rng, src)
        if dst == src:
            return None
        is_global = bool(self.region_map and self.region_map.is_global_pair(src, dst))
        return Packet(
            src=src,
            dst=dst,
            length=self.lengths(self.rng),
            inject_cycle=cycle,
            app_id=self.app_id,
            vnet=self.vnet,
            is_global=is_global,
            is_adversarial=self.adversarial,
        )
