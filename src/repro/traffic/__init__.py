"""Traffic generation.

* :mod:`repro.traffic.patterns` — destination samplers: uniform random,
  transpose, bit-complement, hotspot (the paper's UR/TP/BC/HS), plus
  region-restricted wrappers.
* :mod:`repro.traffic.synthetic` — Bernoulli packet sources with the
  paper's bimodal 1-/5-flit length mix.
* :mod:`repro.traffic.regional` — per-application regionalized traffic
  (intra-region + inter-region + memory-controller components) used by the
  Figure 8/11/13 scenarios.
* :mod:`repro.traffic.adversarial` — the Figure 17 chip-wide flood.
* :mod:`repro.traffic.parsec` — the PARSEC-trace substitution: bursty
  request/reply workloads with per-application intensity profiles.
* :mod:`repro.traffic.trace` — capture/replay of packet traces.
"""

from repro.traffic.adversarial import AdversarialTrafficSource
from repro.traffic.coherence import CoherenceConfig, CoherenceWorkload
from repro.traffic.parsec import PARSEC_PROFILES, ParsecAppProfile, ParsecWorkload
from repro.traffic.patterns import (
    BitComplementPattern,
    HotspotPattern,
    OutOfRegionPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)
from repro.traffic.regional import RegionalAppTraffic
from repro.traffic.synthetic import BimodalLengths, FixedLength, SyntheticTrafficSource
from repro.traffic.trace import Trace, TraceTrafficSource, capture_trace

__all__ = [
    "UniformPattern",
    "TransposePattern",
    "BitComplementPattern",
    "HotspotPattern",
    "OutOfRegionPattern",
    "make_pattern",
    "SyntheticTrafficSource",
    "BimodalLengths",
    "FixedLength",
    "RegionalAppTraffic",
    "AdversarialTrafficSource",
    "ParsecWorkload",
    "ParsecAppProfile",
    "PARSEC_PROFILES",
    "CoherenceWorkload",
    "CoherenceConfig",
    "Trace",
    "TraceTrafficSource",
    "capture_trace",
]
