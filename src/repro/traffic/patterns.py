"""Destination samplers — the paper's synthetic traffic patterns.

A pattern is a callable ``pattern(rng, src) -> dst``. The four classic
patterns from Dally & Towles used in Section V (UR, TP, BC, HS) are
provided, plus two wrappers the regionalized scenarios need:

* :class:`UniformPattern` can be restricted to an arbitrary node subset
  (intra-region uniform random traffic),
* :class:`OutOfRegionPattern` forces a base pattern's destinations out of
  the source's region, falling back to uniform-external when the base
  pattern is deterministic and maps a node into its own region (e.g.
  transpose on the diagonal). The paper applies TP/BC/HS "to the global
  traffic component" (Fig. 15); the fallback keeps that component truly
  inter-region without biasing the rest of the pattern.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.regions import RegionMap
from repro.noc.topology import Topology
from repro.util.errors import TrafficError

__all__ = [
    "UniformPattern",
    "TransposePattern",
    "BitComplementPattern",
    "HotspotPattern",
    "OutOfRegionPattern",
    "make_pattern",
]


class UniformPattern:
    """Uniform random destination over a node set (default: whole mesh)."""

    def __init__(
        self,
        topology: Topology,
        nodes: Sequence[int] | None = None,
        exclude_src: bool = True,
    ):
        self.nodes = np.asarray(
            range(topology.num_nodes) if nodes is None else sorted(nodes), dtype=np.int64
        )
        if len(self.nodes) == 0:
            raise TrafficError("UniformPattern over an empty node set")
        if exclude_src and len(self.nodes) == 1:
            raise TrafficError("cannot exclude src from a single-node set")
        self.exclude_src = exclude_src

    def __call__(self, rng: np.random.Generator, src: int) -> int:
        while True:
            dst = int(self.nodes[rng.integers(len(self.nodes))])
            if not (self.exclude_src and dst == src):
                return dst


class TransposePattern:
    """Matrix transpose: ``(x, y) -> (y, x)``; needs a square mesh."""

    def __init__(self, topology: Topology):
        if topology.width != topology.height:
            raise TrafficError("transpose requires a square mesh")
        self.topology = topology

    def __call__(self, rng: np.random.Generator, src: int) -> int:
        x, y = self.topology.coords(src)
        return self.topology.node_at(y, x)


class BitComplementPattern:
    """Bit complement: ``(x, y) -> (W-1-x, H-1-y)``."""

    def __init__(self, topology: Topology):
        self.topology = topology

    def __call__(self, rng: np.random.Generator, src: int) -> int:
        x, y = self.topology.coords(src)
        return self.topology.node_at(self.topology.width - 1 - x, self.topology.height - 1 - y)


class HotspotPattern:
    """Hotspot: with probability ``hot_prob`` target a hotspot node,
    otherwise fall through to a background pattern (uniform by default).

    Default hotspots are the four mesh corners, matching the paper's use of
    corner nodes as the shared (memory-controller-like) resources.
    """

    def __init__(
        self,
        topology: Topology,
        hotspots: Sequence[int] | None = None,
        hot_prob: float = 0.5,
        background=None,
    ):
        if not 0.0 <= hot_prob <= 1.0:
            raise TrafficError(f"hot_prob must be in [0,1], got {hot_prob}")
        self.hotspots = np.asarray(
            topology.corner_nodes() if hotspots is None else list(hotspots), dtype=np.int64
        )
        if len(self.hotspots) == 0:
            raise TrafficError("HotspotPattern needs at least one hotspot")
        self.hot_prob = hot_prob
        self.background = background or UniformPattern(topology)

    def __call__(self, rng: np.random.Generator, src: int) -> int:
        if rng.random() < self.hot_prob:
            dst = int(self.hotspots[rng.integers(len(self.hotspots))])
            if dst != src:
                return dst
        return self.background(rng, src)


class OutOfRegionPattern:
    """Force destinations out of the source's region.

    Draws from ``base``; if the drawn destination lies in the source's own
    region (possible for deterministic patterns near the diagonal/centre),
    retries a few times and then falls back to uniform over external
    nodes, so the traffic stays genuinely inter-region.
    """

    _RETRIES = 4

    def __init__(self, base, region_map: RegionMap):
        self.base = base
        self.region_map = region_map
        topo = region_map.topology
        self._external: dict[int, np.ndarray] = {}
        for app in region_map.apps:
            ext = [n for n in range(topo.num_nodes) if region_map.node_app[n] != app]
            if not ext:
                raise TrafficError(f"app {app} covers the whole mesh; no external nodes")
            self._external[app] = np.asarray(ext, dtype=np.int64)

    def __call__(self, rng: np.random.Generator, src: int) -> int:
        app = self.region_map.node_app[src]
        for _ in range(self._RETRIES):
            dst = self.base(rng, src)
            if self.region_map.node_app[dst] != app:
                return dst
        ext = self._external[app]
        return int(ext[rng.integers(len(ext))])


def make_pattern(name: str, topology: Topology, **kwargs):
    """Build a pattern by its paper abbreviation (``ur``/``tp``/``bc``/``hs``)."""
    lname = name.lower()
    if lname in ("ur", "uniform", "uniform_random"):
        return UniformPattern(topology, **kwargs)
    if lname in ("tp", "transpose"):
        return TransposePattern(topology)
    if lname in ("bc", "bit_complement", "bitcomp"):
        return BitComplementPattern(topology)
    if lname in ("hs", "hotspot"):
        return HotspotPattern(topology, **kwargs)
    raise TrafficError(f"unknown traffic pattern {name!r}")
