"""Adversarial traffic — the Figure 17 stressor.

The paper models "malicious traffic (e.g., an elaborated attack, or simply
an OS bug)" as uniform chip-wide traffic at 0.4 flits/cycle/node layered on
top of normal application traffic. Packets are flagged ``is_adversarial``
so statistics can exclude them, and carry their own application id so
region-aware schemes see them as foreign everywhere (no region is assigned
to the adversary) while STC's intensity oracle ranks them last.
"""

from __future__ import annotations

from repro.noc.topology import Topology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import SyntheticTrafficSource

__all__ = ["AdversarialTrafficSource", "ADVERSARY_APP_ID"]

#: app id reserved for the adversary (outside any region)
ADVERSARY_APP_ID = 1_000


class AdversarialTrafficSource(SyntheticTrafficSource):
    """Uniform chip-wide flood at a fixed rate (default 0.4 flits/node/cycle)."""

    def __init__(
        self,
        topology: Topology,
        seed,
        rate: float = 0.4,
        app_id: int = ADVERSARY_APP_ID,
        vnet: int = 0,
        start: int = 0,
        stop: int | None = None,
        region_map=None,
    ):
        super().__init__(
            nodes=range(topology.num_nodes),
            rate=rate,
            pattern=UniformPattern(topology),
            app_id=app_id,
            seed=seed,
            vnet=vnet,
            region_map=region_map,
            start=start,
            stop=stop,
            adversarial=True,
        )
