"""Per-application regionalized traffic — the scenario workloads.

:class:`RegionalAppTraffic` generates one application's traffic with the
three-way mix the paper's scenarios use (e.g. Fig. 13: "75% intra-region
uniform random traffic, 20% inter-region global traffic with various
traffic patterns, and 5% traffic to and from the 4 corner nodes to mimic
memory controller traffic"):

* **intra** — uniform random inside the application's own region,
* **inter** — a global traffic pattern forced out of the region,
* **mc** — memory-controller traffic: half of it node->corner, half
  corner->node (the "to and from" of the paper), attributed to the
  application either way.

Setting ``inter_fraction`` to the swept value ``p`` with ``mc_fraction=0``
reproduces the two-application MSP scenario of Figs. 8-10.
"""

from __future__ import annotations

import numpy as np

from repro.core.regions import RegionMap
from repro.noc.flit import Packet
from repro.traffic.patterns import OutOfRegionPattern, UniformPattern
from repro.traffic.synthetic import SyntheticTrafficSource
from repro.util.errors import TrafficError

__all__ = ["RegionalAppTraffic"]


class RegionalAppTraffic(SyntheticTrafficSource):
    """Traffic of one application mapped to one region.

    Parameters beyond :class:`SyntheticTrafficSource`:

    intra_fraction / inter_fraction / mc_fraction:
        Probabilities of the three components; must sum to 1 (within
        float tolerance). ``mc_fraction`` may be 0 for scenarios without
        memory-controller traffic.
    inter_pattern:
        Destination pattern for the inter-region component *before*
        out-of-region enforcement; defaults to chip-wide uniform random.
    mc_nodes:
        Memory-controller sites; defaults to the four mesh corners.
    """

    def __init__(
        self,
        region_map: RegionMap,
        app_id: int,
        rate: float,
        seed,
        intra_fraction: float = 0.75,
        inter_fraction: float = 0.20,
        mc_fraction: float = 0.05,
        inter_pattern=None,
        mc_nodes=None,
        lengths=None,
        vnet: int = 0,
        start: int = 0,
        stop: int | None = None,
    ):
        total = intra_fraction + inter_fraction + mc_fraction
        if abs(total - 1.0) > 1e-9:
            raise TrafficError(
                f"traffic fractions must sum to 1, got {intra_fraction}+"
                f"{inter_fraction}+{mc_fraction}={total}"
            )
        nodes = region_map.nodes_of(app_id)
        if not nodes:
            raise TrafficError(f"app {app_id} has no nodes in the region map")
        topo = region_map.topology
        super().__init__(
            nodes=nodes,
            rate=rate,
            pattern=None,
            app_id=app_id,
            seed=seed,
            lengths=lengths,
            vnet=vnet,
            region_map=region_map,
            start=start,
            stop=stop,
        )
        self.intra_fraction = intra_fraction
        self.inter_fraction = inter_fraction
        self.mc_fraction = mc_fraction
        self._intra = (
            UniformPattern(topo, nodes) if len(nodes) > 1 else None
        )
        base = inter_pattern or UniformPattern(topo)
        self._inter = OutOfRegionPattern(base, region_map) if inter_fraction > 0 else None
        self.mc_nodes = np.asarray(
            topo.corner_nodes() if mc_nodes is None else sorted(mc_nodes), dtype=np.int64
        )

    def make_packet(self, src: int, cycle: int) -> Packet | None:
        rng = self.rng
        u = rng.random()
        if u < self.intra_fraction:
            if self._intra is None:
                return None
            dst = self._intra(rng, src)
            is_global = False
        elif u < self.intra_fraction + self.inter_fraction:
            dst = self._inter(rng, src)
            is_global = True
        else:
            # Memory-controller component: half node->MC, half MC->node,
            # both attributed to this application.
            mc = int(self.mc_nodes[rng.integers(len(self.mc_nodes))])
            if rng.random() < 0.5:
                dst = mc
            else:
                src, dst = mc, src
            if src == dst:
                return None
            is_global = self.region_map.is_global_pair(src, dst)
        if dst == src:
            return None
        return self._new_packet(src, dst, self.lengths(rng), cycle, is_global)
