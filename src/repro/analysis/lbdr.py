r"""LBDR's mapping restriction — the paper's Section III.B analysis.

LBDR (Logic-Based Distributed Routing, [8, 22] in the paper) confines each
application's packets to its own region, so a region that contains no
memory controller (MC) can never reach memory: such mappings are invalid
(the paper's Fig. 3(b)). The paper quantifies the cost of this restriction
for 16 cores, 4 MCs and 4 applications of 4 threads each:

.. math::

    4! \binom{12}{3}\binom{9}{3}\binom{6}{3}\binom{3}{3}
    \Big/ \binom{16}{4}\binom{12}{4}\binom{8}{4}\binom{4}{4}
    \approx 14\%

i.e. only ~14% of all application-to-core mappings remain admissible,
"which greatly restricts the opportunity to find the optimal
application-to-core mapping".

This module reproduces the number three ways:

* :func:`lbdr_valid_fraction` — the closed form, generalized to ``n``
  cores, ``m`` MCs and ``k`` equal-size applications (requires
  ``m == k``: each region takes exactly one MC, the case the paper
  counts);
* :func:`mapping_is_lbdr_valid` — the predicate on a concrete mapping;
* :func:`lbdr_valid_fraction_montecarlo` — empirical rate over random
  mappings, which must agree with the closed form.
"""

from __future__ import annotations

from math import comb, factorial

import numpy as np

from repro.util.errors import ConfigError
from repro.util.rng import make_rng

__all__ = [
    "lbdr_valid_fraction",
    "mapping_is_lbdr_valid",
    "lbdr_valid_fraction_montecarlo",
]


def lbdr_valid_fraction(cores: int = 16, mcs: int = 4, apps: int = 4) -> float:
    """Fraction of app-to-core mappings admissible under LBDR.

    ``cores`` nodes host ``apps`` applications of equal size
    ``cores // apps``; ``mcs`` of the nodes are memory controllers. A
    mapping is admissible iff every application's node set contains at
    least one MC node; following the paper's counting this requires
    ``mcs == apps`` (exactly one MC per region — with more regions than
    MCs the fraction is zero, which the paper also notes: "the number of
    regions that can be accommodated is at most the number of MCs").
    """
    if cores % apps:
        raise ConfigError(f"{apps} equal applications cannot tile {cores} cores")
    size = cores // apps
    if apps > mcs:
        return 0.0
    if apps < mcs:
        raise ConfigError(
            "closed form counts exactly one MC per region; need apps == mcs"
        )
    # Admissible assignments: distribute the m distinct MC nodes to the m
    # applications (m! ways), then fill each application's remaining
    # size-1 slots from the non-MC nodes.
    non_mc = cores - mcs
    numerator = factorial(mcs)
    remaining = non_mc
    for _ in range(apps):
        numerator *= comb(remaining, size - 1)
        remaining -= size - 1
    # All assignments: split the n nodes into ordered groups of `size`.
    denominator = 1
    remaining = cores
    for _ in range(apps):
        denominator *= comb(remaining, size)
        remaining -= size
    return numerator / denominator


def mapping_is_lbdr_valid(node_app, mc_nodes) -> bool:
    """Whether every application owns at least one memory-controller node.

    ``node_app`` maps node -> app id (unassigned nodes: -1); ``mc_nodes``
    is the set of MC node ids. Under LBDR an application without an MC in
    its region cannot reach memory (paper Fig. 3(b)).
    """
    apps = {a for a in node_app if a >= 0}
    covered = {node_app[n] for n in mc_nodes if node_app[n] >= 0}
    return apps <= covered


def lbdr_valid_fraction_montecarlo(
    cores: int = 16,
    mcs: int = 4,
    apps: int = 4,
    trials: int = 20_000,
    seed: int | None = 0,
) -> float:
    """Empirical admissible fraction over uniform random equal-size mappings."""
    if cores % apps:
        raise ConfigError(f"{apps} equal applications cannot tile {cores} cores")
    size = cores // apps
    rng = make_rng(seed)
    mc_nodes = tuple(range(mcs))  # which nodes are MCs is immaterial by symmetry
    hits = 0
    assignment = np.repeat(np.arange(apps), size)
    for _ in range(trials):
        perm = rng.permutation(cores)
        node_app = np.empty(cores, dtype=np.int64)
        node_app[perm] = assignment
        if mapping_is_lbdr_valid(node_app.tolist(), mc_nodes):
            hits += 1
    return hits / trials
