"""Analytical reproductions of the paper's back-of-envelope results.

* :mod:`repro.analysis.lbdr` — Section III.B's combinatorial argument that
  LBDR's routing restrictions rule out ~86% of application-to-core
  mappings (every region must contain a memory controller), both in
  closed form and by Monte-Carlo/exhaustive checking of actual mappings.
* :mod:`repro.analysis.criticality` — the Fig. 1 latency-overlap model of
  why global traffic is more performance-critical than regional traffic.
"""

from repro.analysis.criticality import OverlapModel, stall_cycles
from repro.analysis.lbdr import (
    lbdr_valid_fraction,
    lbdr_valid_fraction_montecarlo,
    mapping_is_lbdr_valid,
)

__all__ = [
    "lbdr_valid_fraction",
    "lbdr_valid_fraction_montecarlo",
    "mapping_is_lbdr_valid",
    "OverlapModel",
    "stall_cycles",
]
