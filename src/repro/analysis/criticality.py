"""The Fig. 1 latency-overlap model: why global traffic is more critical.

The paper's Section II.C argues with a two-load example: a core issues two
outstanding requests P1 and P2 and then stalls until *both* replies return
(memory-level parallelism). If both are regional, their latencies overlap
almost completely; if P2 is global, the part of its latency that exceeds
P1's sits directly on the program's critical path.

:class:`OverlapModel` formalizes this: given round-trip latencies of the
outstanding requests, the induced stall is the *maximum* (not the sum),
so the marginal cost of a request is ``max(0, L - max(other latencies))``
— zero while it hides under a longer one, full once it is the longest.
This is the quantitative backbone for RAIR's choice to prioritize foreign
(global) traffic by default, and for the STC-style observation that
low-intensity traffic is stall-critical.

Used by the docs/examples and unit-tested; the simulator itself does not
depend on it (the simulator measures packet latency, and the model maps
packet latency to application impact).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.util.errors import ConfigError

__all__ = ["stall_cycles", "OverlapModel"]


def stall_cycles(latencies: Sequence[float], compute_overlap: float = 0.0) -> float:
    """Stall induced by a batch of concurrently outstanding requests.

    ``latencies`` are the round-trip times of requests issued back to
    back; ``compute_overlap`` is the independent work the core can do
    meanwhile. The batch stalls the core for ``max(latencies)`` minus the
    hidden compute, floored at zero.
    """
    if not latencies:
        return 0.0
    if any(lat < 0 for lat in latencies):
        raise ConfigError("latencies must be non-negative")
    return max(0.0, max(latencies) - compute_overlap)


@dataclass(frozen=True)
class OverlapModel:
    """Marginal criticality of one request in an MLP window.

    Parameters mirror the Fig. 1 example: ``regional_latency`` is the
    round trip of an intra-region request, ``global_latency`` of an
    inter-region one.
    """

    regional_latency: float = 20.0
    global_latency: float = 60.0

    def __post_init__(self) -> None:
        if self.regional_latency <= 0 or self.global_latency <= 0:
            raise ConfigError("latencies must be positive")

    def marginal_stall(self, latency: float, others: Sequence[float]) -> float:
        """Extra stall this request adds on top of its MLP companions."""
        baseline = max(others, default=0.0)
        return max(0.0, latency - baseline)

    def fig1_example(self) -> dict[str, float]:
        """The paper's P1/P2 example as numbers.

        Returns the extra stall caused by P2 when it is regional
        (latency overlaps P1's — near zero) vs global (most of its
        latency is exposed).
        """
        p1 = self.regional_latency
        return {
            "p2_regional_extra_stall": self.marginal_stall(self.regional_latency, [p1]),
            "p2_global_extra_stall": self.marginal_stall(self.global_latency, [p1]),
        }

    def speedup_from_acceleration(
        self, latency: float, accelerated: float, others: Sequence[float]
    ) -> float:
        """Stall cycles saved by accelerating one request.

        Accelerating a request below the longest companion saves nothing
        further — the quantitative reason interference reduction should
        target the *longest* (global) requests first.
        """
        if accelerated > latency:
            raise ConfigError("accelerated latency must not exceed the original")
        return self.marginal_stall(latency, others) - self.marginal_stall(
            accelerated, others
        )
